// Package tensor provides the dense float64 matrix type and the small
// set of linear-algebra operations GoPIM needs: matrix products,
// element-wise maps, row/column reductions, and random initialisation.
//
// The package is deliberately minimal — it backs the GCN training
// engine and the MLP time predictor, both of which only require dense
// GEMM-style kernels. Sparse adjacency matrices live in package
// sparsemat.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"gopim/internal/parallel"
)

// Matrix is a dense, row-major float64 matrix.
//
// The zero value is an empty (0×0) matrix. Use New, NewFromRows, or the
// random constructors for anything else.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (r, c) lives
	// at Data[r*Cols+c]. Its length is always Rows*Cols.
	Data []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equally sized rows.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", r, len(row), cols))
		}
		copy(m.Data[r*cols:(r+1)*cols], row)
	}
	return m
}

// NewRandom returns a rows×cols matrix with entries drawn uniformly
// from [-scale, scale] using rng.
func NewRandom(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// NewGlorot returns a rows×cols matrix initialised with the Glorot
// (Xavier) uniform scheme, the standard initialisation for GCN and MLP
// weight matrices.
func NewGlorot(rng *rand.Rand, rows, cols int) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return NewRandom(rng, rows, cols, limit)
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 {
	m.check(r, c)
	return m.Data[r*m.Cols+c]
}

// Set stores v at element (r, c).
func (m *Matrix) Set(r, c int, v float64) {
	m.check(r, c)
	m.Data[r*m.Cols+c] = v
}

// Add accumulates v into element (r, c).
func (m *Matrix) Add(r, c int, v float64) {
	m.check(r, c)
	m.Data[r*m.Cols+c] += v
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Row returns the r-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(r int) []float64 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", r, m.Rows))
	}
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// SetRow copies v into row r. len(v) must equal Cols.
func (m *Matrix) SetRow(r int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(r), v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom overwrites m's contents with src's. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// transposeParallelMin is the element count below which T stays on the
// serial gather loop; tiny transposes are dominated by goroutine
// handoff, not copying.
const transposeParallelMin = 1 << 14

// T returns the transpose of m as a new matrix. Large matrices gather
// in parallel, one block of output rows per worker; each output row is
// written by exactly one worker, so the result is identical at any
// worker count.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	if m.Rows*m.Cols < transposeParallelMin {
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for c, v := range row {
				out.Data[c*out.Cols+r] = v
			}
		}
		return out
	}
	grain := transposeParallelMin / (m.Rows + 1)
	parallel.For(m.Cols, grain+1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			orow := out.Row(c)
			for r := 0; r < m.Rows; r++ {
				orow[r] = m.Data[r*m.Cols+c]
			}
		}
	})
	return out
}

// TransposeInto computes dst = srcᵀ, reusing dst's storage. dst must
// be src.Cols × src.Rows and must not alias src. The gather order is
// the serial one regardless of size: transposes on the training hot
// path sit inside already-parallel sections, and a copy is exact, so
// there is no accumulation order to protect.
func TransposeInto(dst, src *Matrix) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, src.Cols, src.Rows))
	}
	if aliases(dst, src) {
		panic("tensor: TransposeInto dst must not alias src")
	}
	for r := 0; r < src.Rows; r++ {
		row := src.Row(r)
		for c, v := range row {
			dst.Data[c*dst.Cols+r] = v
		}
	}
}

// MatMul returns a*b. Panics if the inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// aliases reports whether two matrices share storage. All Matrix
// values own their whole Data slice (every constructor allocates with
// make), so shared storage always means the slices start at the same
// element.
func aliases(x, y *Matrix) bool {
	return len(x.Data) > 0 && len(y.Data) > 0 && &x.Data[0] == &y.Data[0]
}

// matmulParallelMinFLOPs is the multiply-add count below which
// MatMulInto stays on the serial kernel; the MLP predictor issues
// thousands of tiny batch-16 GEMMs where fork/join overhead would
// swamp the arithmetic.
const matmulParallelMinFLOPs = 1 << 16

// GEMM cache-blocking tile sizes (elements). The kernel processes
// gemmBlockI output rows at a time against kc×jc blocks of b: a
// 128×128 float64 block of b (128 KiB, L2-resident) is reused across
// the whole row tile instead of b being re-streamed from memory once
// per output row. Tiling only reorders the i/j traversal; for every
// output element the k-summation order is unchanged, which keeps
// blocked results byte-identical to the unblocked kernel.
const (
	gemmBlockI = 32
	gemmBlockK = 128
	gemmBlockJ = 128
)

// MatMulInto computes dst = a*b, reusing dst's storage.
// dst must be a.Rows × b.Cols and must not alias a or b (checked —
// aliased storage would silently corrupt the accumulation).
//
// Large products run row-blocked in parallel: each worker owns a
// contiguous block of dst rows and accumulates it in the same ikj
// order as the serial kernel, so the result is byte-identical at any
// worker count. Within a row the kernel is cache-blocked over k and j
// (see gemmBlockK/gemmBlockJ); per output element the accumulation
// order is still k-ascending with the same zero-skip, so blocking
// never changes a single output bit.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("tensor: MatMulInto dst must not alias a or b")
	}
	flopsPerRow := a.Cols * b.Cols
	if a.Rows*flopsPerRow < matmulParallelMinFLOPs {
		matMulBlock(dst, a, b, 0, a.Rows)
		return
	}
	grain := matmulParallelMinFLOPs / (4 * (flopsPerRow + 1))
	// One-worker runs take the serial path without building the
	// escaping closure For needs — the training hot loop stays
	// allocation-free on single-core hosts.
	if parallel.Serial(a.Rows, grain+1) {
		matMulBlock(dst, a, b, 0, a.Rows)
		return
	}
	parallel.For(a.Rows, grain+1, func(lo, hi int) {
		matMulBlock(dst, a, b, lo, hi)
	})
}

// matMulBlock computes dst rows [lo, hi) = a[lo:hi]·b with i/k/j
// tiling. Accumulation per output element stays k-ascending with the
// historic zero-skip, so the result is byte-identical to the old
// unblocked ikj loop at any tile size.
func matMulBlock(dst, a, b *Matrix, lo, hi int) {
	cols := b.Cols
	inner := a.Cols
	if cols == 1 {
		// Matrix·vector: b's single column is contiguous, so each output
		// element is a straight dot product. The tile machinery would
		// re-slice b once per k-step for a single element; the dot loop
		// below runs the identical zero-skip/paired accumulation sequence
		// in registers and stores each result once.
		for i := lo; i < hi; i++ {
			dst.Data[i] = pairedDot(a.Row(i), b.Data)
		}
		return
	}
	for i := lo; i < hi; i++ {
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for i0 := lo; i0 < hi; i0 += gemmBlockI {
		i1 := i0 + gemmBlockI
		if i1 > hi {
			i1 = hi
		}
		for k0 := 0; k0 < inner; k0 += gemmBlockK {
			k1 := k0 + gemmBlockK
			if k1 > inner {
				k1 = inner
			}
			for j0 := 0; j0 < cols; j0 += gemmBlockJ {
				j1 := j0 + gemmBlockJ
				if j1 > cols {
					j1 = cols
				}
				for i := i0; i < i1; i++ {
					arow := a.Row(i)
					ot := dst.Data[i*cols+j0 : i*cols+j1]
					// Pair consecutive nonzero k-steps: each output
					// element still receives its updates one k at a
					// time in ascending order (two separate rounded
					// add/mul steps per pass), so the bits match the
					// one-k-per-pass loop while ot is loaded and
					// stored half as often.
					k := k0
					for k < k1 {
						av0 := arow[k]
						if av0 == 0 {
							k++
							continue
						}
						k2 := k + 1
						for k2 < k1 && arow[k2] == 0 {
							k2++
						}
						bt0 := b.Data[k*cols+j0 : k*cols+j1]
						ob := ot[:len(bt0)]
						if k2 < k1 {
							av1 := arow[k2]
							bt1 := b.Data[k2*cols+j0 : k2*cols+j1]
							bt1 = bt1[:len(bt0)]
							for j, bv := range bt0 {
								v := ob[j] + av0*bv
								ob[j] = v + av1*bt1[j]
							}
							k = k2 + 1
						} else {
							for j, bv := range bt0 {
								ob[j] += av0 * bv
							}
							k = k1
						}
					}
				}
			}
		}
	}
}

// pairedDot returns Σₖ a[k]·b[k] accumulated exactly as the blocked
// GEMM kernel accumulates one output element: k-ascending, zero entries
// of a skipped without an FP op, and consecutive nonzero k-steps paired
// into two separately rounded add/mul steps. Any kernel built on it is
// byte-identical to matMulBlock for the same operand values.
func pairedDot(a, b []float64) float64 {
	b = b[:len(a)]
	var acc float64
	k := 0
	for k < len(a) {
		av0 := a[k]
		if av0 == 0 {
			k++
			continue
		}
		k2 := k + 1
		for k2 < len(a) && a[k2] == 0 {
			k2++
		}
		if k2 < len(a) {
			v := acc + av0*b[k]
			acc = v + a[k2]*b[k2]
			k = k2 + 1
		} else {
			acc += av0 * b[k]
			k = len(a)
		}
	}
	return acc
}

// pairedDotStride is pairedDot with a strided left operand: it reads
// a[k*stride] for k in [0, n) — column i of a row-major matrix when
// called with a = Data[i:] — against a contiguous b. The accumulation
// sequence is identical to pairedDot on the gathered column.
func pairedDotStride(a []float64, stride, n int, b []float64) float64 {
	b = b[:n]
	var acc float64
	k := 0
	for k < n {
		av0 := a[k*stride]
		if av0 == 0 {
			k++
			continue
		}
		k2 := k + 1
		for k2 < n && a[k2*stride] == 0 {
			k2++
		}
		if k2 < n {
			v := acc + av0*b[k]
			acc = v + a[k2*stride]*b[k2]
			k = k2 + 1
		} else {
			acc += av0 * b[k]
			k = n
		}
	}
	return acc
}

// MatMulTNInto computes dst = aᵀ·b without materialising the
// transpose, reusing dst's storage. dst must be a.Cols × b.Cols and
// must not alias a or b. It is byte-identical to
// TransposeInto(at, a); MatMulInto(dst, at, b): per output element the
// accumulation runs k-ascending over a's rows with the same zero-skip
// and pairing as the plain kernel, only the gather of aᵀ's row (a
// strided column read of a) is fused into the product.
//
// Training backward passes use it for weight gradients (dW = Xᵀ·Δ),
// where materialising Xᵀ once per mini-batch cost more than the
// product itself on thin matrices.
func MatMulTNInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTN inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTNInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("tensor: MatMulTNInto dst must not alias a or b")
	}
	flopsPerRow := a.Rows * b.Cols
	if dst.Rows*flopsPerRow < matmulParallelMinFLOPs {
		matMulTNBlock(dst, a, b, 0, dst.Rows)
		return
	}
	grain := matmulParallelMinFLOPs / (4 * (flopsPerRow + 1))
	if parallel.Serial(dst.Rows, grain+1) {
		matMulTNBlock(dst, a, b, 0, dst.Rows)
		return
	}
	parallel.For(dst.Rows, grain+1, func(lo, hi int) {
		matMulTNBlock(dst, a, b, lo, hi)
	})
}

// matMulTNBlock computes dst rows [lo, hi) of aᵀ·b. Row i of dst reads
// column i of a (stride a.Cols); the k/j tiling mirrors matMulBlock and
// per output element the k order, zero-skip and pairing are unchanged.
func matMulTNBlock(dst, a, b *Matrix, lo, hi int) {
	cols := b.Cols
	inner := a.Rows
	ac := a.Cols
	if cols == 1 {
		for i := lo; i < hi; i++ {
			dst.Data[i] = pairedDotStride(a.Data[i:], ac, inner, b.Data)
		}
		return
	}
	for i := lo; i < hi; i++ {
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for k0 := 0; k0 < inner; k0 += gemmBlockK {
		k1 := k0 + gemmBlockK
		if k1 > inner {
			k1 = inner
		}
		for j0 := 0; j0 < cols; j0 += gemmBlockJ {
			j1 := j0 + gemmBlockJ
			if j1 > cols {
				j1 = cols
			}
			for i := lo; i < hi; i++ {
				acol := a.Data[i:]
				ot := dst.Data[i*cols+j0 : i*cols+j1]
				k := k0
				for k < k1 {
					av0 := acol[k*ac]
					if av0 == 0 {
						k++
						continue
					}
					k2 := k + 1
					for k2 < k1 && acol[k2*ac] == 0 {
						k2++
					}
					bt0 := b.Data[k*cols+j0 : k*cols+j1]
					ob := ot[:len(bt0)]
					if k2 < k1 {
						av1 := acol[k2*ac]
						bt1 := b.Data[k2*cols+j0 : k2*cols+j1]
						bt1 = bt1[:len(bt0)]
						for j, bv := range bt0 {
							v := ob[j] + av0*bv
							ob[j] = v + av1*bt1[j]
						}
						k = k2 + 1
					} else {
						for j, bv := range bt0 {
							ob[j] += av0 * bv
						}
						k = k1
					}
				}
			}
		}
	}
}

// MatMulNTInto computes dst = a·bᵀ without materialising the
// transpose, reusing dst's storage. dst must be a.Rows × b.Rows and
// must not alias a or b. It is byte-identical to
// TransposeInto(bt, b); MatMulInto(dst, a, bt): output element (i, j)
// is the dot product of a's row i and b's row j — both contiguous —
// accumulated k-ascending with the plain kernel's zero-skip (on a's
// entries) and pairing.
//
// Training backward passes use it to push gradients through a layer
// (dX = Δ·Wᵀ) without re-transposing the weights every mini-batch.
func MatMulNTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("tensor: MatMulNTInto dst must not alias a or b")
	}
	flopsPerRow := a.Cols * b.Rows
	if a.Rows*flopsPerRow < matmulParallelMinFLOPs {
		matMulNTBlock(dst, a, b, 0, a.Rows)
		return
	}
	grain := matmulParallelMinFLOPs / (4 * (flopsPerRow + 1))
	if parallel.Serial(a.Rows, grain+1) {
		matMulNTBlock(dst, a, b, 0, a.Rows)
		return
	}
	parallel.For(a.Rows, grain+1, func(lo, hi int) {
		matMulNTBlock(dst, a, b, lo, hi)
	})
}

// matMulNTBlock computes dst rows [lo, hi) of a·bᵀ with the same
// i/k/j tiling as matMulBlock: the j-wide inner loop keeps one
// independent accumulator per output column (throughput-bound, like
// the plain kernel) instead of a single serial dot chain, and the
// zero-skip check on a[i,k] is amortised over the whole j tile.
// bᵀ's row k is b's column k, read with stride b.Cols.
func matMulNTBlock(dst, a, b *Matrix, lo, hi int) {
	cols := b.Rows
	inner := a.Cols
	if cols == 1 {
		// a·bᵀ with a single b row is a matrix·vector product against
		// b's only (contiguous) row.
		for i := lo; i < hi; i++ {
			dst.Data[i] = pairedDot(a.Row(i), b.Data)
		}
		return
	}
	bd := b.Data
	for i := lo; i < hi; i++ {
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for i0 := lo; i0 < hi; i0 += gemmBlockI {
		i1 := i0 + gemmBlockI
		if i1 > hi {
			i1 = hi
		}
		for k0 := 0; k0 < inner; k0 += gemmBlockK {
			k1 := k0 + gemmBlockK
			if k1 > inner {
				k1 = inner
			}
			for j0 := 0; j0 < cols; j0 += gemmBlockJ {
				j1 := j0 + gemmBlockJ
				if j1 > cols {
					j1 = cols
				}
				for i := i0; i < i1; i++ {
					arow := a.Row(i)
					ot := dst.Data[i*cols+j0 : i*cols+j1]
					k := k0
					for k < k1 {
						av0 := arow[k]
						if av0 == 0 {
							k++
							continue
						}
						k2 := k + 1
						for k2 < k1 && arow[k2] == 0 {
							k2++
						}
						if k2 < k1 {
							av1 := arow[k2]
							bc0 := bd[j0*inner+k:]
							bc1 := bd[j0*inner+k2:]
							for j := range ot {
								v := ot[j] + av0*bc0[j*inner]
								ot[j] = v + av1*bc1[j*inner]
							}
							k = k2 + 1
						} else {
							bc0 := bd[j0*inner+k:]
							for j := range ot {
								ot[j] += av0 * bc0[j*inner]
							}
							k = k1
						}
					}
				}
			}
		}
	}
}

// AddInPlace computes m += other element-wise.
func (m *Matrix) AddInPlace(other *Matrix) {
	m.sameShape(other, "AddInPlace")
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// SubInPlace computes m -= other element-wise.
func (m *Matrix) SubInPlace(other *Matrix) {
	m.sameShape(other, "SubInPlace")
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// MulInPlace computes m *= other element-wise (Hadamard product).
func (m *Matrix) MulInPlace(other *Matrix) {
	m.sameShape(other, "MulInPlace")
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// ScaleInPlace multiplies every entry by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes m += s*other element-wise.
func (m *Matrix) AXPY(s float64, other *Matrix) {
	m.sameShape(other, "AXPY")
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

func (m *Matrix) sameShape(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// Apply replaces every entry x with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Map returns a new matrix whose entries are f applied to m's entries.
func (m *Matrix) Map(f func(float64) float64) *Matrix {
	out := m.Clone()
	out.Apply(f)
	return out
}

// ReLU returns max(x, 0) applied element-wise as a new matrix.
func (m *Matrix) ReLU() *Matrix {
	return m.Map(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUInPlace applies max(x, 0) element-wise in place. The predicate
// mirrors ReLU exactly (anything not greater than zero, NaN included,
// becomes 0) so the two paths stay bit-identical.
func (m *Matrix) ReLUInPlace() {
	for i, v := range m.Data {
		if !(v > 0) {
			m.Data[i] = 0
		}
	}
}

// ReLUMask returns a matrix with 1 where m > 0 and 0 elsewhere —
// the derivative of ReLU used during backpropagation.
func (m *Matrix) ReLUMask() *Matrix {
	return m.Map(func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// AddRowVector adds v to every row of m in place. len(v) must be Cols.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v[c]
		}
	}
}

// ColSums returns the per-column sums of m.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	m.ColSumsInto(sums)
	return sums
}

// ColSumsInto accumulates the per-column sums of m into sums,
// zeroing it first. len(sums) must equal Cols.
func (m *Matrix) ColSumsInto(sums []float64) {
	if len(sums) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto length %d != cols %d", len(sums), m.Cols))
	}
	for c := range sums {
		sums[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			sums[c] += v
		}
	}
}

// FrobeniusNorm returns sqrt(Σ x²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and other have identical shape and entries
// within tolerance eps.
func (m *Matrix) Equal(other *Matrix, eps float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (m *Matrix) String() string {
	return fmt.Sprintf("tensor.Matrix(%dx%d)", m.Rows, m.Cols)
}

// ArgMaxRow returns the column index of the largest entry in row r.
func (m *Matrix) ArgMaxRow(r int) int {
	row := m.Row(r)
	best, bestV := 0, math.Inf(-1)
	for c, v := range row {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// SoftmaxRows returns a new matrix with a numerically stable softmax
// applied to every row.
func (m *Matrix) SoftmaxRows() *Matrix {
	out := New(m.Rows, m.Cols)
	m.SoftmaxRowsInto(out)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of m into out, reusing
// out's storage. out must match m's shape and not alias it.
func (m *Matrix) SoftmaxRowsInto(out *Matrix) {
	m.sameShape(out, "SoftmaxRowsInto")
	if aliases(out, m) {
		panic("tensor: SoftmaxRowsInto out must not alias m")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		orow := out.Row(r)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for c, v := range row {
			e := math.Exp(v - max)
			orow[c] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		for c := range orow {
			orow[c] /= sum
		}
	}
}
