package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents: %v", m.Data)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7)
	m.Add(1, 0, 3)
	if got := m.At(1, 0); got != 10 {
		t.Fatalf("At(1,0) = %v, want 10", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestRowAliases(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row must alias underlying storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(rng, 5, 5, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if got := MatMul(a, id); !got.Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if got := MatMul(id, a); !got.Equal(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T contents wrong: %v", at.Data)
	}
	if !at.T().Equal(a, 0) {
		t.Fatal("double transpose should round-trip")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := NewRandom(rng, m, k, 2)
		b := NewRandom(rng, k, n, 2)
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := NewRandom(r, m, k, 1)
		b := NewRandom(r, k, n, 1)
		c := NewRandom(r, k, n, 1)
		sum := b.Clone()
		sum.AddInPlace(c)
		lhs := MatMul(a, sum)
		rhs := MatMul(a, b)
		rhs.AddInPlace(MatMul(a, c))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestElementWiseOps(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {3, -4}})
	b := NewFromRows([][]float64{{10, 10}, {10, 10}})
	c := a.Clone()
	c.AddInPlace(b)
	if c.At(0, 0) != 11 || c.At(1, 1) != 6 {
		t.Fatalf("AddInPlace wrong: %v", c.Data)
	}
	c.SubInPlace(b)
	if !c.Equal(a, 0) {
		t.Fatal("Sub should undo Add")
	}
	c.MulInPlace(b)
	if c.At(1, 0) != 30 {
		t.Fatalf("MulInPlace wrong: %v", c.Data)
	}
	c.ScaleInPlace(0.1)
	if math.Abs(c.At(1, 0)-3) > 1e-12 {
		t.Fatalf("ScaleInPlace wrong: %v", c.Data)
	}
	d := a.Clone()
	d.AXPY(2, b)
	if d.At(0, 1) != 18 {
		t.Fatalf("AXPY wrong: %v", d.Data)
	}
}

func TestReLUAndMask(t *testing.T) {
	a := NewFromRows([][]float64{{-1, 0, 2}})
	r := a.ReLU()
	if r.At(0, 0) != 0 || r.At(0, 1) != 0 || r.At(0, 2) != 2 {
		t.Fatalf("ReLU wrong: %v", r.Data)
	}
	m := a.ReLUMask()
	if m.At(0, 0) != 0 || m.At(0, 2) != 1 {
		t.Fatalf("ReLUMask wrong: %v", m.Data)
	}
	// Original must be untouched.
	if a.At(0, 0) != -1 {
		t.Fatal("ReLU must not mutate its receiver")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := NewFromRows([][]float64{{1, 1, 1}, {1000, 1000, 1000}, {0, math.Inf(-1), 0}})
	s := a.SoftmaxRows()
	for r := 0; r < s.Rows; r++ {
		var sum float64
		for c := 0; c < s.Cols; c++ {
			v := s.At(r, c)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax(%d,%d) = %v out of [0,1]", r, c, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v, want 1", r, sum)
		}
	}
	if math.Abs(s.At(0, 0)-1.0/3) > 1e-9 {
		t.Fatalf("uniform row should softmax to 1/3, got %v", s.At(0, 0))
	}
}

func TestArgMaxRow(t *testing.T) {
	a := NewFromRows([][]float64{{0.1, 0.9, 0.5}, {-3, -1, -2}})
	if got := a.ArgMaxRow(0); got != 1 {
		t.Fatalf("ArgMaxRow(0) = %d, want 1", got)
	}
	if got := a.ArgMaxRow(1); got != 1 {
		t.Fatalf("ArgMaxRow(1) = %d, want 1", got)
	}
}

func TestColSums(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	s := a.ColSums()
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("ColSums = %v, want [4 6]", s)
	}
}

func TestAddRowVector(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	a.AddRowVector([]float64{10, 20})
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Fatalf("AddRowVector wrong: %v", a.Data)
	}
}

func TestNorms(t *testing.T) {
	a := NewFromRows([][]float64{{3, -4}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := NewFromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if !a.Equal(b, 0) {
		t.Fatal("CopyFrom should copy contents")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	a.CopyFrom(New(1, 1))
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewGlorot(rng, 30, 50)
	limit := math.Sqrt(6.0 / 80.0)
	for i, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Data[%d] = %v exceeds Glorot limit %v", i, v, limit)
		}
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{1, 0}, {0, 1}})
	dst := New(2, 2)
	dst.Set(0, 0, 99) // stale garbage must be cleared
	MatMulInto(dst, a, b)
	if !dst.Equal(a, 1e-12) {
		t.Fatalf("MatMulInto = %v, want %v", dst.Data, a.Data)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandom(rng, 128, 128, 1)
	y := NewRandom(rng, 128, 128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulInto128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandom(rng, 128, 128, 1)
	y := NewRandom(rng, 128, 128, 1)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// Property: matrix multiplication is associative.
func TestMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, l, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := NewRandom(r, m, k, 1)
		b := NewRandom(r, k, l, 1)
		c := NewRandom(r, l, n, 1)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling commutes with multiplication.
func TestScaleCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewRandom(r, 1+r.Intn(5), 1+r.Intn(5), 1)
		b := NewRandom(r, a.Cols, 1+r.Intn(5), 1)
		s := r.NormFloat64()
		lhs := MatMul(a, b)
		lhs.ScaleInPlace(s)
		as := a.Clone()
		as.ScaleInPlace(s)
		rhs := MatMul(as, b)
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
