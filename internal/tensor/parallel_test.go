package tensor

import (
	"math/rand"
	"testing"

	"gopim/internal/parallel"
)

// TestMatMulAliasPanics pins the MatMulInto aliasing guard: reusing an
// operand's storage as the destination must fail loudly instead of
// silently accumulating garbage.
func TestMatMulAliasPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(rng, 8, 8, 1)
	b := NewRandom(rng, 8, 8, 1)
	for _, tc := range []struct {
		name string
		dst  *Matrix
	}{
		{"dst==a", a},
		{"dst==b", b},
		{"shared Data slice", &Matrix{Rows: 8, Cols: 8, Data: a.Data}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected aliasing panic")
				}
			}()
			MatMulInto(tc.dst, a, b)
		})
	}
	// Non-aliased reuse must still work.
	dst := New(8, 8)
	MatMulInto(dst, a, b)
}

// withWorkers runs f at a fixed worker count and restores the default.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	f()
}

// TestMatMulDeterministicAcrossWorkers asserts the parallel GEMM is
// byte-identical to the serial kernel: same blocked accumulation per
// row regardless of how many workers claim the blocks. Sizes straddle
// the serial-fallback threshold.
func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range []struct{ m, k, n int }{
		{5, 7, 3},    // below threshold: serial fallback
		{64, 96, 80}, // above threshold: parallel kernel
	} {
		a := NewRandom(rng, sz.m, sz.k, 1)
		b := NewRandom(rng, sz.k, sz.n, 1)
		var base *Matrix
		withWorkers(t, 1, func() { base = MatMul(a, b) })
		for _, w := range []int{2, 8} {
			withWorkers(t, w, func() {
				got := MatMul(a, b)
				for i := range base.Data {
					if got.Data[i] != base.Data[i] {
						t.Fatalf("%dx%dx%d workers=%d: entry %d = %v, serial %v",
							sz.m, sz.k, sz.n, w, i, got.Data[i], base.Data[i])
					}
				}
			})
		}
	}
}

// TestBlockedMatMulMatchesReference pins the cache-blocked kernel to a
// plain ikj reference loop, byte for byte. Sizes deliberately straddle
// the gemmBlockI/K/J tile boundaries (including non-multiples), and a
// sprinkling of exact zeros exercises the zero-skip, which must fire
// identically in both kernels for the accumulation orders to agree.
func TestBlockedMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sz := range []struct{ m, k, n int }{
		{1, 1, 1},
		{7, 5, 9},                            // everything inside one tile
		{gemmBlockI, gemmBlockK, gemmBlockJ}, // exact tile multiples
		{gemmBlockI + 3, gemmBlockK + 5, gemmBlockJ + 7}, // ragged tails
		{70, 260, 150}, // several tiles each way
	} {
		a := NewRandom(rng, sz.m, sz.k, 1)
		b := NewRandom(rng, sz.k, sz.n, 1)
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0 // exercise the zero-skip
		}
		ref := New(sz.m, sz.n)
		for i := 0; i < sz.m; i++ {
			arow := a.Row(i)
			orow := ref.Row(i)
			for k := 0; k < sz.k; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		for _, w := range []int{1, 2, 8} {
			withWorkers(t, w, func() {
				got := MatMul(a, b)
				for i := range ref.Data {
					if got.Data[i] != ref.Data[i] {
						t.Fatalf("%dx%dx%d workers=%d: entry %d = %v, reference %v",
							sz.m, sz.k, sz.n, w, i, got.Data[i], ref.Data[i])
					}
				}
			})
		}
	}
}

// TestTransposeInto pins the Into transpose against T() and its
// shape/alias guards.
func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewRandom(rng, 17, 29, 1)
	dst := New(29, 17)
	TransposeInto(dst, m)
	want := m.T()
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("entry %d: %v vs %v", i, dst.Data[i], want.Data[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected shape panic")
			}
		}()
		TransposeInto(New(17, 29), m)
	}()
	sq := NewRandom(rng, 8, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected alias panic")
		}
	}()
	TransposeInto(sq, sq)
}

// TestTransposeDeterministicAcrossWorkers does the same for the
// parallel gather transpose.
func TestTransposeDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewRandom(rng, 150, 130, 1) // above transposeParallelMin
	var base *Matrix
	withWorkers(t, 1, func() { base = m.T() })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.T()
			for i := range base.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("workers=%d: transpose entry %d differs", w, i)
				}
			}
		})
	}
}
