package tensor

import (
	"math/rand"
	"testing"

	"gopim/internal/parallel"
)

// TestMatMulAliasPanics pins the MatMulInto aliasing guard: reusing an
// operand's storage as the destination must fail loudly instead of
// silently accumulating garbage.
func TestMatMulAliasPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(rng, 8, 8, 1)
	b := NewRandom(rng, 8, 8, 1)
	for _, tc := range []struct {
		name string
		dst  *Matrix
	}{
		{"dst==a", a},
		{"dst==b", b},
		{"shared Data slice", &Matrix{Rows: 8, Cols: 8, Data: a.Data}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected aliasing panic")
				}
			}()
			MatMulInto(tc.dst, a, b)
		})
	}
	// Non-aliased reuse must still work.
	dst := New(8, 8)
	MatMulInto(dst, a, b)
}

// withWorkers runs f at a fixed worker count and restores the default.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	f()
}

// TestMatMulDeterministicAcrossWorkers asserts the parallel GEMM is
// byte-identical to the serial kernel: same blocked accumulation per
// row regardless of how many workers claim the blocks. Sizes straddle
// the serial-fallback threshold.
func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range []struct{ m, k, n int }{
		{5, 7, 3},    // below threshold: serial fallback
		{64, 96, 80}, // above threshold: parallel kernel
	} {
		a := NewRandom(rng, sz.m, sz.k, 1)
		b := NewRandom(rng, sz.k, sz.n, 1)
		var base *Matrix
		withWorkers(t, 1, func() { base = MatMul(a, b) })
		for _, w := range []int{2, 8} {
			withWorkers(t, w, func() {
				got := MatMul(a, b)
				for i := range base.Data {
					if got.Data[i] != base.Data[i] {
						t.Fatalf("%dx%dx%d workers=%d: entry %d = %v, serial %v",
							sz.m, sz.k, sz.n, w, i, got.Data[i], base.Data[i])
					}
				}
			})
		}
	}
}

// TestTransposeDeterministicAcrossWorkers does the same for the
// parallel gather transpose.
func TestTransposeDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewRandom(rng, 150, 130, 1) // above transposeParallelMin
	var base *Matrix
	withWorkers(t, 1, func() { base = m.T() })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.T()
			for i := range base.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("workers=%d: transpose entry %d differs", w, i)
				}
			}
		})
	}
}
