package trace

import (
	"fmt"
	"io"

	"gopim/internal/obs"
)

// ChromeTraceEvents converts the simulated schedule into Chrome
// trace-event form, so paper Gantt data loads in the same viewer
// (chrome://tracing, Perfetto) as the CLI's wall-clock span traces.
// Every (stage, replica) pair becomes one lane, named from names when
// provided ("AG1/r2"); each stage execution becomes one complete event
// labelled with its micro-batch index. Simulated nanoseconds map to
// the format's microsecond timestamps, and the events carry the
// dedicated simulated-time pid so the two clocks never mix in one
// process track.
func (s *Schedule) ChromeTraceEvents(names []string) []obs.TraceEvent {
	// Lane base per stage: replicas of earlier stages stack first.
	base := make([]int, len(s.Replicas))
	lanes := 0
	for i, r := range s.Replicas {
		base[i] = lanes
		lanes += r
	}
	// Earliest-free dispatch touches at most MicroBatches replicas of a
	// stage, while the allocation can run to thousands; name only the
	// lanes that carry events so the viewer isn't flooded with empty
	// rows.
	used := make([]bool, lanes)
	for _, e := range s.Events {
		used[base[e.Stage]+e.Replica] = true
	}
	events := make([]obs.TraceEvent, 0, len(s.Events)+lanes+1)
	events = append(events, obs.SimProcessNameEvent())
	for i, r := range s.Replicas {
		name := fmt.Sprintf("stage %d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		for k := 0; k < r; k++ {
			if !used[base[i]+k] {
				continue
			}
			events = append(events, obs.ThreadNameEvent(obs.SimPid, base[i]+k,
				fmt.Sprintf("%s/r%d", name, k)))
		}
	}
	for _, e := range s.Events {
		events = append(events, obs.TraceEvent{
			Name: fmt.Sprintf("mb %d", e.MicroBatch),
			Cat:  "sim",
			Ph:   "X",
			Ts:   e.StartNS / 1e3,
			Dur:  (e.EndNS - e.StartNS) / 1e3,
			Pid:  obs.SimPid,
			Tid:  base[e.Stage] + e.Replica,
		})
	}
	return events
}

// WriteChromeTrace writes the schedule as Chrome trace-event JSON.
func (s *Schedule) WriteChromeTrace(w io.Writer, names []string) error {
	return obs.WriteTraceJSON(w, s.ChromeTraceEvents(names))
}

// laneBases returns the first viewer lane (tid) of each stage and the
// total lane count, matching the stacking ChromeTraceEvents uses.
func (s *Schedule) laneBases() ([]int, int) {
	base := make([]int, len(s.Replicas))
	lanes := 0
	for i, r := range s.Replicas {
		base[i] = lanes
		lanes += r
	}
	return base, lanes
}

// FlowEvents renders an event chain (in schedule order, e.g. the
// explain critical path) as Chrome flow arrows: one "s"/"f" pair per
// consecutive pair of events, drawn from the predecessor's end to the
// successor's start on the same lanes ChromeTraceEvents emits. The
// finish binds to the enclosing slice (bp "e"), so arrows land on the
// successor event itself.
func (s *Schedule) FlowEvents(chain []Event, name string) []obs.TraceEvent {
	base, _ := s.laneBases()
	out := make([]obs.TraceEvent, 0, 2*len(chain))
	for k := 0; k+1 < len(chain); k++ {
		a, b := chain[k], chain[k+1]
		id := fmt.Sprintf("%s-%d", name, k+1)
		out = append(out, obs.TraceEvent{
			Name: name, Cat: "sim", Ph: "s", ID: id,
			Ts: a.EndNS / 1e3, Pid: obs.SimPid, Tid: base[a.Stage] + a.Replica,
		}, obs.TraceEvent{
			Name: name, Cat: "sim", Ph: "f", Bp: "e", ID: id,
			Ts: b.StartNS / 1e3, Pid: obs.SimPid, Tid: base[b.Stage] + b.Replica,
		})
	}
	return out
}

// CounterSample is one point of a simulated-time counter track: the
// per-series values at one instant.
type CounterSample struct {
	TsNS   float64
	Values map[string]float64
}

// CounterEvents renders samples as one Chrome counter track (ph "C")
// on the simulated-time process; the viewer draws each Values key as a
// stacked series. Callers must pass samples in ascending time order
// with a fixed key set for deterministic bytes (encoding/json sorts
// the keys of each sample).
func CounterEvents(name string, samples []CounterSample) []obs.TraceEvent {
	out := make([]obs.TraceEvent, 0, len(samples))
	for _, smp := range samples {
		args := make(map[string]any, len(smp.Values))
		for k, v := range smp.Values {
			args[k] = v
		}
		out = append(out, obs.TraceEvent{
			Name: name, Cat: "sim", Ph: "C",
			Ts: smp.TsNS / 1e3, Pid: obs.SimPid, Args: args,
		})
	}
	return out
}
