package trace

import (
	"fmt"
	"io"

	"gopim/internal/obs"
)

// ChromeTraceEvents converts the simulated schedule into Chrome
// trace-event form, so paper Gantt data loads in the same viewer
// (chrome://tracing, Perfetto) as the CLI's wall-clock span traces.
// Every (stage, replica) pair becomes one lane, named from names when
// provided ("AG1/r2"); each stage execution becomes one complete event
// labelled with its micro-batch index. Simulated nanoseconds map to
// the format's microsecond timestamps, and the events carry the
// dedicated simulated-time pid so the two clocks never mix in one
// process track.
func (s *Schedule) ChromeTraceEvents(names []string) []obs.TraceEvent {
	// Lane base per stage: replicas of earlier stages stack first.
	base := make([]int, len(s.Replicas))
	lanes := 0
	for i, r := range s.Replicas {
		base[i] = lanes
		lanes += r
	}
	// Earliest-free dispatch touches at most MicroBatches replicas of a
	// stage, while the allocation can run to thousands; name only the
	// lanes that carry events so the viewer isn't flooded with empty
	// rows.
	used := make([]bool, lanes)
	for _, e := range s.Events {
		used[base[e.Stage]+e.Replica] = true
	}
	events := make([]obs.TraceEvent, 0, len(s.Events)+lanes+1)
	events = append(events, obs.SimProcessNameEvent())
	for i, r := range s.Replicas {
		name := fmt.Sprintf("stage %d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		for k := 0; k < r; k++ {
			if !used[base[i]+k] {
				continue
			}
			events = append(events, obs.ThreadNameEvent(obs.SimPid, base[i]+k,
				fmt.Sprintf("%s/r%d", name, k)))
		}
	}
	for _, e := range s.Events {
		events = append(events, obs.TraceEvent{
			Name: fmt.Sprintf("mb %d", e.MicroBatch),
			Cat:  "sim",
			Ph:   "X",
			Ts:   e.StartNS / 1e3,
			Dur:  (e.EndNS - e.StartNS) / 1e3,
			Pid:  obs.SimPid,
			Tid:  base[e.Stage] + e.Replica,
		})
	}
	return events
}

// WriteChromeTrace writes the schedule as Chrome trace-event JSON.
func (s *Schedule) WriteChromeTrace(w io.Writer, names []string) error {
	return obs.WriteTraceJSON(w, s.ChromeTraceEvents(names))
}
