package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The Chrome trace export is an interchange format: viewers and the CI
// diff tooling parse it byte-for-byte, so its serialization must not
// drift with refactors. A fixed schedule must render to exactly the
// checked-in JSON; regenerate deliberately with
//
//	go test ./internal/trace -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	s := Simulate(Input{
		TimesNS:      []float64{100, 200, 150},
		Replicas:     []int{1, 2, 1},
		MicroBatches: 4,
	})
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf, []string{"CO1", "AG1", "LC1"}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace JSON drifted from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
