// Package trace is a discrete-event, replica-level pipeline simulator.
//
// The closed-form model in package pipeline treats r replicas of a
// stage as dividing its per-micro-batch time by r — the paper's own
// approximation (equation (6) with tᵢ/rᵢ). This package simulates the
// alternative operational semantics explicitly: each replica is a
// server with the full stage latency, micro-batches dispatch to the
// earliest-free replica, and the dependency constraints of equations
// (3)–(4) are enforced per event. Both models agree on steady-state
// throughput (one micro-batch per tᵢ/rᵢ at the bottleneck), so the
// trace validates the closed form and additionally yields a Gantt
// chart and exact per-replica utilisation.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gopim/internal/obs"
	"gopim/internal/simmemo"
)

// Event-level schedule metrics (Sim clock: functions of the input).
var (
	mSimulations = obs.NewCounter("trace.simulations", obs.Sim,
		"event-level schedules simulated")
	mEvents = obs.NewCounter("trace.events", obs.Sim,
		"stage-execution events generated")
	mMakespan = obs.NewDistribution("trace.makespan_ns", obs.Sim,
		"event-level makespan per schedule")
)

// Event is one stage execution of one micro-batch on one replica.
type Event struct {
	Stage      int
	MicroBatch int
	Replica    int
	StartNS    float64
	EndNS      float64
}

// Schedule is a complete simulated execution. Schedules returned by
// Simulate/SimulateUnrecorded may be shared across callers via the
// memo layer and must be treated as read-only.
//
// Events are appended micro-batch-major, stage-minor: the event for
// (stage i, micro-batch j) sits at index j·len(TimesNS)+i. The explain
// analyzer indexes events by this contract.
type Schedule struct {
	Events     []Event
	MakespanNS float64
	// StageBusyNS is total busy time per stage, summed over replicas.
	StageBusyNS []float64
	// Replicas echoes the input replica counts.
	Replicas []int
}

// Input configures a trace simulation.
type Input struct {
	// TimesNS is each stage's full per-micro-batch latency (one
	// replica's service time — NOT divided by the replica count).
	TimesNS []float64
	// Replicas is the number of servers per stage (≥ 1); nil = 1 each.
	Replicas []int
	// MicroBatches is the number of micro-batches to run.
	MicroBatches int
	// MicroBatchesPerBatch, when positive, inserts a full-completion
	// barrier every that many micro-batches — the intra-batch pipeline
	// semantics of pipeline.IntraBatch (weight updates barrier the
	// pipeline between batches). 1 reproduces strictly serial
	// micro-batch execution; 0 (the default) pipelines across batch
	// boundaries with no barrier.
	MicroBatchesPerBatch int
}

// Simulate runs the event-level schedule and records the trace metrics.
// The metrics are pure functions of (input, returned schedule), so the
// recording happens on every call even when the schedule itself comes
// from the memo — Sim snapshots are identical with the memo on or off.
func Simulate(in Input) *Schedule {
	sched := memoSimulate(in)
	mSimulations.Inc()
	mEvents.Add(int64(len(sched.Events)))
	mMakespan.Observe(sched.MakespanNS)
	return sched
}

// SimulateUnrecorded runs the same schedule without touching the trace
// metrics. Analysis layers (critical-path extraction, ±1-replica
// what-if perturbations) re-simulate schedules many times per
// user-visible run; routing those through the unrecorded path keeps
// trace.simulations counting only the schedules the user asked for, so
// existing Sim snapshots stay comparable across the explain feature's
// introduction.
func SimulateUnrecorded(in Input) *Schedule { return memoSimulate(in) }

// schedCache memoizes event-level schedules by exact input tuple. The
// explain analyzer's what-if perturbations and serve/sweep harnesses
// re-simulate the same handful of inputs repeatedly; 512 entries is
// far above any single run's distinct-input working set (the simmemo
// capacity contract). Hits share the *Schedule — every consumer
// (explain, gantt, Chrome export, serve) treats schedules as
// read-only, which the Schedule doc now pins.
var schedCache = simmemo.NewCache("trace", 512)

// memoMaxEvents bounds what the memo will retain: schedules above
// ~64k events (paper-scale one-off simulations) are cheap relative to
// their footprint to re-run and would crowd the cache.
const memoMaxEvents = 1 << 16

// memoSimulate is the memoized core shared by Simulate and
// SimulateUnrecorded. Results must be treated as immutable.
func memoSimulate(in Input) *Schedule {
	if !simmemo.Enabled() || len(in.TimesNS)*in.MicroBatches > memoMaxEvents {
		return simulate(in)
	}
	return simmemo.Do(schedCache, in.fingerprint(), func() *Schedule { return simulate(in) })
}

// fingerprint renders the exact stage-input tuple: float64 latencies
// by bit pattern, so two inputs collide only when every field is
// bit-identical.
func (in Input) fingerprint() string {
	var b strings.Builder
	b.Grow(18*len(in.TimesNS) + 8*len(in.Replicas) + 16)
	for _, t := range in.TimesNS {
		b.WriteString(strconv.FormatUint(math.Float64bits(t), 16))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, r := range in.Replicas {
		b.WriteString(strconv.Itoa(r))
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "|%d|%d", in.MicroBatches, in.MicroBatchesPerBatch)
	return b.String()
}

func simulate(in Input) *Schedule {
	n := len(in.TimesNS)
	if n == 0 {
		panic("trace: no stages")
	}
	if in.MicroBatches < 1 {
		panic(fmt.Sprintf("trace: %d micro-batches", in.MicroBatches))
	}
	if in.MicroBatchesPerBatch < 0 {
		panic(fmt.Sprintf("trace: %d micro-batches per batch", in.MicroBatchesPerBatch))
	}
	replicas := in.Replicas
	if replicas == nil {
		replicas = make([]int, n)
		for i := range replicas {
			replicas[i] = 1
		}
	}
	if len(replicas) != n {
		panic(fmt.Sprintf("trace: %d replica counts for %d stages", len(replicas), n))
	}
	for i, t := range in.TimesNS {
		// NaN/Inf must fail here, at the boundary: every downstream
		// consumer (StageUtilization, the explain analyzer, the Sim
		// metric observations) assumes finite event times.
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			panic(fmt.Sprintf("trace: stage %d time %v must be finite and non-negative", i, t))
		}
		if replicas[i] < 1 {
			panic(fmt.Sprintf("trace: stage %d has %d replicas", i, replicas[i]))
		}
	}

	// freeAt[i][k] is when replica k of stage i becomes free.
	freeAt := make([][]float64, n)
	for i := range freeAt {
		freeAt[i] = make([]float64, replicas[i])
	}
	// done[i] is when stage i finished the previous micro-batch — the
	// equation (4) in-order constraint (results must commit in order).
	done := make([]float64, n)

	sched := &Schedule{
		StageBusyNS: make([]float64, n),
		Replicas:    append([]int(nil), replicas...),
	}
	// barrier is the start-of-batch bound: with MicroBatchesPerBatch
	// set, no micro-batch of batch b starts before every event of batch
	// b−1 finished. The bound propagates through the stage-order chain,
	// so applying it to the first stage's ready time is exact.
	barrier := 0.0
	for j := 0; j < in.MicroBatches; j++ {
		if per := in.MicroBatchesPerBatch; per > 0 && j > 0 && j%per == 0 {
			for i := range done {
				if done[i] > barrier {
					barrier = done[i]
				}
			}
		}
		ready := barrier // end of previous stage for this micro-batch
		for i := 0; i < n; i++ {
			// Earliest-free replica.
			k := 0
			for r := 1; r < replicas[i]; r++ {
				if freeAt[i][r] < freeAt[i][k] {
					k = r
				}
			}
			start := ready
			if freeAt[i][k] > start {
				start = freeAt[i][k]
			}
			end := start + in.TimesNS[i]
			// Commit in order: a micro-batch's stage result is not
			// visible before its predecessor's (prevents overtaking).
			if end < done[i] {
				end = done[i]
			}
			freeAt[i][k] = end
			done[i] = end
			ready = end
			sched.Events = append(sched.Events, Event{
				Stage: i, MicroBatch: j, Replica: k, StartNS: start, EndNS: end,
			})
			sched.StageBusyNS[i] += in.TimesNS[i]
			if end > sched.MakespanNS {
				sched.MakespanNS = end
			}
		}
	}
	return sched
}

// StageUtilization returns, per stage, busy time divided by
// (makespan × replicas) — the exact counterpart of the paper's idle
// percentages at replica granularity. Zero-makespan (and empty)
// schedules report zero utilisation everywhere: the guard keeps
// NaN/Inf out of every downstream Sim metric.
func (s *Schedule) StageUtilization() []float64 {
	out := make([]float64, len(s.StageBusyNS))
	for i, busy := range s.StageBusyNS {
		denom := s.MakespanNS * float64(s.Replicas[i])
		if denom > 0 {
			out[i] = busy / denom
		}
	}
	return out
}

// EventsForStage returns the stage's events sorted by start time.
func (s *Schedule) EventsForStage(stage int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Stage == stage {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StartNS < out[b].StartNS })
	return out
}

// RenderGantt writes a text Gantt chart with the given number of time
// columns: a time-axis ruler row, one row per stage whose cell
// characters are the micro-batch index mod 10 (blank = idle across all
// replicas), and a per-stage utilisation gutter column.
func (s *Schedule) RenderGantt(w io.Writer, columns int, names []string) error {
	return s.RenderGanttMarked(w, columns, names, nil)
}

// RenderGanttMarked is RenderGantt with critical-path marking: events
// for which marked returns true render as '*' instead of their
// micro-batch digit, so the chain of events that sums to the makespan
// stands out from the pipelined bulk. A nil predicate marks nothing.
func (s *Schedule) RenderGanttMarked(w io.Writer, columns int, names []string, marked func(Event) bool) error {
	if columns < 1 {
		columns = 60
	}
	if s.MakespanNS <= 0 {
		_, err := io.WriteString(w, "(empty schedule)\n")
		return err
	}
	scale := float64(columns) / s.MakespanNS
	util := s.StageUtilization()
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s |%s|  util\n", "t(ns)", ruler(s.MakespanNS, columns))
	for i := range s.StageBusyNS {
		name := fmt.Sprintf("stage %d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		row := make([]byte, columns)
		for c := range row {
			row[c] = ' '
		}
		for _, e := range s.EventsForStage(i) {
			lo := int(e.StartNS * scale)
			hi := int(e.EndNS * scale)
			if hi >= columns {
				hi = columns - 1
			}
			// Clamp lo too: a zero-duration event (TimesNS[i] == 0) at
			// the very end of the schedule lands exactly on
			// lo == columns and must render in the last cell, not fall
			// outside the row.
			if lo >= columns {
				lo = columns - 1
			}
			ch := byte('0' + e.MicroBatch%10)
			if marked != nil && marked(e) {
				ch = '*'
			}
			for c := lo; c <= hi; c++ {
				row[c] = ch
			}
		}
		fmt.Fprintf(&b, "%-6s |%s| %5.1f%%\n", name, row, util[i]*100)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ruler renders the time axis: tick labels at 0, ¼, ½ and ¾ of the
// makespan (the right edge IS the makespan, so the last quarter stays
// readable without a clipped label).
func ruler(makespanNS float64, columns int) string {
	row := make([]byte, columns)
	for c := range row {
		row[c] = ' '
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75} {
		at := int(f * float64(columns))
		label := strconv.FormatFloat(makespanNS*f, 'g', 3, 64)
		for k := 0; k < len(label) && at+k < columns; k++ {
			row[at+k] = label[k]
		}
	}
	return string(row)
}
