package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gopim/internal/pipeline"
)

func TestSingleStageSingleReplica(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{5}, MicroBatches: 4})
	if s.MakespanNS != 20 {
		t.Fatalf("makespan = %v, want 20", s.MakespanNS)
	}
	if len(s.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(s.Events))
	}
	for j, e := range s.EventsForStage(0) {
		if e.StartNS != float64(j*5) || e.EndNS != float64((j+1)*5) {
			t.Fatalf("event %d = %+v", j, e)
		}
	}
}

// With one replica everywhere, the trace must agree exactly with the
// closed-form pipeline model.
func TestMatchesClosedFormSingleReplica(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Float64() * 50
		}
		b := 1 + rng.Intn(40)
		tr := Simulate(Input{TimesNS: times, MicroBatches: b})
		cf := pipeline.ClosedFormTotal(times, b)
		return math.Abs(tr.MakespanNS-cf) < 1e-6*cf+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// With replicas, the trace's steady-state throughput matches the
// closed form's t/r bottleneck: makespan within one pipeline fill of
// Σtᵢ + (B−1)·max(tᵢ/rᵢ).
func TestReplicaThroughputMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		times := make([]float64, n)
		reps := make([]int, n)
		eff := make([]float64, n)
		for i := range times {
			times[i] = 1 + rng.Float64()*30
			reps[i] = 1 + rng.Intn(5)
			eff[i] = times[i] / float64(reps[i])
		}
		b := 20 + rng.Intn(100)
		tr := Simulate(Input{TimesNS: times, Replicas: reps, MicroBatches: b})
		cf := pipeline.ClosedFormTotal(eff, b)
		var fill float64
		for _, t := range times {
			fill += t // one full-latency pass bounds the fill/drain gap
		}
		return tr.MakespanNS >= cf-1e-9 && tr.MakespanNS <= cf+2*fill+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Events must never overlap on the same replica, and stage results
// must commit in micro-batch order.
func TestNoReplicaOverlapAndInOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		times := make([]float64, n)
		reps := make([]int, n)
		for i := range times {
			times[i] = 1 + rng.Float64()*10
			reps[i] = 1 + rng.Intn(4)
		}
		s := Simulate(Input{TimesNS: times, Replicas: reps, MicroBatches: 1 + rng.Intn(30)})
		// Group by (stage, replica) and check intervals are disjoint.
		type key struct{ stage, rep int }
		byRep := map[key][]Event{}
		lastEnd := map[int]map[int]float64{} // stage → mb → end
		for _, e := range s.Events {
			byRep[key{e.Stage, e.Replica}] = append(byRep[key{e.Stage, e.Replica}], e)
			if lastEnd[e.Stage] == nil {
				lastEnd[e.Stage] = map[int]float64{}
			}
			lastEnd[e.Stage][e.MicroBatch] = e.EndNS
		}
		for _, evs := range byRep {
			for a := 0; a < len(evs); a++ {
				for b := a + 1; b < len(evs); b++ {
					lo := math.Max(evs[a].StartNS, evs[b].StartNS)
					hi := math.Min(evs[a].EndNS, evs[b].EndNS)
					if hi-lo > 1e-9 {
						return false // overlap
					}
				}
			}
		}
		// In-order commit per stage.
		for _, ends := range lastEnd {
			prev := -1.0
			for j := 0; j < len(ends); j++ {
				if ends[j] < prev-1e-9 {
					return false
				}
				prev = ends[j]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasImproveMakespan(t *testing.T) {
	times := []float64{1, 8}
	base := Simulate(Input{TimesNS: times, MicroBatches: 32})
	fast := Simulate(Input{TimesNS: times, Replicas: []int{1, 4}, MicroBatches: 32})
	if fast.MakespanNS >= base.MakespanNS {
		t.Fatalf("replicas must shorten the schedule: %v vs %v", fast.MakespanNS, base.MakespanNS)
	}
	util := fast.StageUtilization()
	if util[1] <= util[0] {
		t.Fatalf("bottleneck stage should stay busier: %v", util)
	}
	for _, u := range util {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("utilisation out of range: %v", util)
		}
	}
}

func TestRenderGantt(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{2, 4}, Replicas: []int{1, 2}, MicroBatches: 4})
	var buf bytes.Buffer
	if err := s.RenderGantt(&buf, 40, []string{"CO", "AG"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CO") || !strings.Contains(out, "AG") {
		t.Fatalf("gantt missing stage names:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "3") {
		t.Fatalf("gantt missing micro-batch marks:\n%s", out)
	}
	// Degenerate schedule renders gracefully.
	var empty Schedule
	var buf2 bytes.Buffer
	if err := empty.RenderGantt(&buf2, 10, nil); err != nil {
		t.Fatal(err)
	}
}

// A zero-duration stage event whose start coincides with the makespan
// maps to column index == columns; the renderer must clamp it into the
// last cell instead of dropping it (or, before the clamp existed,
// writing out of range).
func TestRenderGanttZeroDurationStage(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{10, 0}, MicroBatches: 1})
	var buf bytes.Buffer
	if err := s.RenderGantt(&buf, 20, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Ruler row + two stage rows.
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[2], "0") {
		t.Fatalf("zero-duration stage invisible in gantt:\n%s", buf.String())
	}
	// Multi-batch variant must also render without panicking.
	s = Simulate(Input{TimesNS: []float64{3, 0, 5}, MicroBatches: 7})
	buf.Reset()
	if err := s.RenderGantt(&buf, 33, []string{"CO", "ZZ", "AG"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ZZ") {
		t.Fatalf("missing stage row:\n%s", buf.String())
	}
}

func TestChromeTraceEvents(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{2000, 4000}, Replicas: []int{1, 2}, MicroBatches: 3})
	evs := s.ChromeTraceEvents([]string{"CO", "AG"})
	var meta, exec int
	seenLane := map[int]bool{}
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			exec++
			if e.Pid != 2 {
				t.Fatalf("sim event on pid %d", e.Pid)
			}
			seenLane[e.Tid] = true
		}
	}
	// 1 process-name + 3 thread-name metadata events; 2 stages × 3 mbs.
	if meta != 4 || exec != 6 {
		t.Fatalf("meta = %d, exec = %d, want 4, 6", meta, exec)
	}
	// Stage 1's two replicas occupy lanes 1 and 2 after stage 0's lane 0.
	if !seenLane[0] || !seenLane[1] || !seenLane[2] {
		t.Fatalf("lanes used = %v, want {0,1,2}", seenLane)
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf, []string{"CO", "AG"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != len(evs) {
		t.Fatalf("JSON events = %d, want %d", len(doc.TraceEvents), len(evs))
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { Simulate(Input{TimesNS: nil, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, MicroBatches: 0}) },
		func() { Simulate(Input{TimesNS: []float64{-1}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, Replicas: []int{0}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, Replicas: []int{1, 1}, MicroBatches: 1}) },
		// Non-finite times must fail at the boundary, before they can
		// poison a Sim metric with NaN/Inf.
		func() { Simulate(Input{TimesNS: []float64{math.NaN()}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1, math.Inf(1)}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, MicroBatches: 1, MicroBatchesPerBatch: -1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// The ruler row and utilisation gutter frame every chart.
func TestRenderGanttRulerAndUtil(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{2, 4}, Replicas: []int{1, 2}, MicroBatches: 4})
	var buf bytes.Buffer
	if err := s.RenderGantt(&buf, 40, []string{"CO", "AG"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want ruler + 2 stages:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "t(ns)") || !strings.Contains(lines[0], "util") {
		t.Fatalf("missing ruler row:\n%s", buf.String())
	}
	// Tick labels at 0 and midpoint of the makespan.
	if !strings.Contains(lines[0], "0") {
		t.Fatalf("ruler missing origin tick:\n%s", buf.String())
	}
	for _, ln := range lines[1:] {
		if !strings.HasSuffix(ln, "%") {
			t.Fatalf("stage row missing utilisation gutter: %q", ln)
		}
	}
}

// Marked events render as '*' so the critical path stands out.
func TestRenderGanttMarked(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{2, 4}, MicroBatches: 3})
	var buf bytes.Buffer
	err := s.RenderGanttMarked(&buf, 30, nil, func(e Event) bool {
		return e.Stage == 1 // whole bottleneck row on-path
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Contains(lines[1], "*") {
		t.Fatalf("unmarked stage shows marks:\n%s", buf.String())
	}
	if !strings.Contains(lines[2], "*") {
		t.Fatalf("marked stage shows no marks:\n%s", buf.String())
	}
}

// MicroBatchesPerBatch must reproduce the closed-form pipeline model's
// batch-barrier semantics exactly (single replica, integer times, so
// float arithmetic is exact).
func TestBarrierMatchesPipelineIntraBatch(t *testing.T) {
	times := []float64{3, 5, 2}
	for _, per := range []int{1, 3, 4, 8} {
		tr := Simulate(Input{TimesNS: times, MicroBatches: 8, MicroBatchesPerBatch: per})
		cf := pipeline.Simulate(pipeline.Input{
			TimesNS: times, MicroBatches: 8, MicroBatchesPerBatch: per,
			Mode: pipeline.IntraBatch,
		})
		if tr.MakespanNS != cf.MakespanNS {
			t.Fatalf("per=%d: trace %v != pipeline %v", per, tr.MakespanNS, cf.MakespanNS)
		}
	}
	// per=1 is strictly serial: B × Σtᵢ.
	tr := Simulate(Input{TimesNS: times, MicroBatches: 5, MicroBatchesPerBatch: 1})
	if tr.MakespanNS != 5*(3+5+2) {
		t.Fatalf("per=1 makespan = %v, want serial 50", tr.MakespanNS)
	}
}

// SimulateUnrecorded must leave the trace Sim counters untouched, so
// explain re-simulations can't drift existing snapshots.
func TestSimulateUnrecorded(t *testing.T) {
	in := Input{TimesNS: []float64{2, 3}, MicroBatches: 4}
	sims, evs, mk := mSimulations.Value(), mEvents.Value(), mMakespan.Count()
	a := SimulateUnrecorded(in)
	if mSimulations.Value() != sims || mEvents.Value() != evs || mMakespan.Count() != mk {
		t.Fatal("SimulateUnrecorded touched trace metrics")
	}
	b := Simulate(in)
	if mSimulations.Value() != sims+1 {
		t.Fatal("Simulate no longer records")
	}
	if a.MakespanNS != b.MakespanNS || len(a.Events) != len(b.Events) {
		t.Fatal("recorded and unrecorded schedules disagree")
	}
}

func TestFlowAndCounterEvents(t *testing.T) {
	s := Simulate(Input{TimesNS: []float64{2000, 4000}, Replicas: []int{1, 2}, MicroBatches: 3})
	chain := []Event{s.Events[0], s.Events[1], s.Events[3]}
	flows := s.FlowEvents(chain, "crit")
	if len(flows) != 4 {
		t.Fatalf("flow events = %d, want 2 pairs", len(flows))
	}
	if flows[0].Ph != "s" || flows[1].Ph != "f" || flows[1].Bp != "e" {
		t.Fatalf("bad flow phases: %+v", flows[:2])
	}
	if flows[0].ID != flows[1].ID || flows[0].ID == flows[2].ID {
		t.Fatalf("flow ids must pair per arrow: %+v", flows)
	}
	ctr := CounterEvents("bubbles", []CounterSample{
		{TsNS: 0, Values: map[string]float64{"fill": 1, "starve": 0}},
		{TsNS: 2000, Values: map[string]float64{"fill": 0, "starve": 2}},
	})
	if len(ctr) != 2 || ctr[0].Ph != "C" || ctr[0].Pid != 2 {
		t.Fatalf("bad counter events: %+v", ctr)
	}
	if v, ok := ctr[1].Args["starve"].(float64); !ok || v != 2 {
		t.Fatalf("counter args must be numeric: %+v", ctr[1].Args)
	}
}
