// Package tuner automates the paper's adaptive-threshold procedure
// (§VI-C): benchmark accuracy across update thresholds θ, find the
// smallest θ whose accuracy loss against exact training stays within a
// budget, and report the whole sweep. The paper runs this offline to
// derive its 50%/80% dense/sparse defaults; this package lets a user
// re-derive a threshold for an arbitrary graph.
package tuner

import (
	"fmt"
	"sort"

	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
)

// Point is one θ evaluation.
type Point struct {
	Theta    float64
	Accuracy float64
	// UpdatedRowFraction is the steady-state write traffic at this θ.
	UpdatedRowFraction float64
}

// SweepResult is a full θ sweep plus the chosen threshold.
type SweepResult struct {
	// Baseline is exact-training accuracy (θ = 1, every epoch).
	Baseline float64
	Points   []Point
	// Chosen is the smallest θ within the loss budget (1.0 if none).
	Chosen float64
}

// Config controls the search.
type Config struct {
	// Thetas to evaluate; defaults to 0.1…1.0 in steps of 0.1.
	Thetas []float64
	// MaxLoss is the tolerated accuracy drop (paper: 1%). Defaults to
	// 0.01.
	MaxLoss float64
	// Train configures the underlying GCN runs (epochs must be set).
	Train gcn.Config
	// StalePeriod for non-important vertices; defaults to 20.
	StalePeriod int
	// InstanceKey, when non-empty, memoizes the sweep's training runs
	// through gcn.TrainMemo. It must uniquely identify the instance's
	// content (see TrainMemo); leave empty for ad-hoc instances.
	InstanceKey string
}

// SearchTheta runs the paper's three steps — accuracy benchmarking,
// accuracy analysis, threshold determination — on one instance.
func SearchTheta(inst *graphgen.Instance, cfg Config) SweepResult {
	if cfg.Train.Epochs < 1 {
		panic(fmt.Sprintf("tuner: training epochs %d must be ≥ 1", cfg.Train.Epochs))
	}
	thetas := cfg.Thetas
	if thetas == nil {
		for v := 1; v <= 10; v++ {
			thetas = append(thetas, float64(v)/10)
		}
	}
	maxLoss := cfg.MaxLoss
	if maxLoss == 0 {
		maxLoss = 0.01
	}
	period := cfg.StalePeriod
	if period == 0 {
		period = 20
	}
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}

	// Step 1: benchmark. The θ=1 run doubles as the exact baseline.
	base := cfg.Train
	base.Plan = nil
	baseline := gcn.TrainMemo(cfg.InstanceKey, inst, base).Accuracy

	res := SweepResult{Baseline: baseline, Chosen: 1}
	sorted := append([]float64(nil), thetas...)
	sort.Float64s(sorted)
	for _, theta := range sorted {
		if theta <= 0 || theta > 1 {
			panic(fmt.Sprintf("tuner: theta %v out of (0,1]", theta))
		}
		run := cfg.Train
		run.Plan = mapping.NewUpdatePlan(degs, theta, period)
		r := gcn.TrainMemo(cfg.InstanceKey, inst, run)
		res.Points = append(res.Points, Point{
			Theta:              theta,
			Accuracy:           r.Accuracy,
			UpdatedRowFraction: r.UpdatedRowFraction,
		})
	}

	// Steps 2–3: analyse and pick the smallest θ within budget.
	for _, p := range res.Points {
		if baseline-p.Accuracy <= maxLoss {
			res.Chosen = p.Theta
			break
		}
	}
	return res
}

// PaperDefault returns the paper's rule of thumb for a graph: θ = 0.5
// when the average degree exceeds 8, otherwise 0.8.
func PaperDefault(g *graphgen.Graph) float64 {
	return mapping.AdaptiveTheta(g.AvgDegree())
}
