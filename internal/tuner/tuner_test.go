package tuner

import (
	"testing"

	"gopim/internal/gcn"
	"gopim/internal/graphgen"
)

func testInstance(t *testing.T) *graphgen.Instance {
	t.Helper()
	d, err := graphgen.ByName("arxiv")
	if err != nil {
		t.Fatal(err)
	}
	d.HiddenCh = 32
	d.FeatureDim = 16
	d.NumClasses = 4
	d.Layers = 2
	return d.Synthesize(3, 300)
}

func TestSearchThetaFindsThreshold(t *testing.T) {
	inst := testInstance(t)
	res := SearchTheta(inst, Config{
		Thetas:      []float64{0.3, 0.6, 0.9},
		MaxLoss:     0.05,
		Train:       gcn.Config{Epochs: 20, Seed: 1, LR: 0.01},
		StalePeriod: 5,
	})
	if res.Baseline <= 0 {
		t.Fatalf("baseline accuracy = %v", res.Baseline)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(res.Points))
	}
	// Points must come back sorted ascending in θ with sensible write
	// fractions.
	prev := 0.0
	for _, p := range res.Points {
		if p.Theta <= prev {
			t.Fatalf("points not sorted: %+v", res.Points)
		}
		prev = p.Theta
		if p.UpdatedRowFraction <= 0 || p.UpdatedRowFraction > 1 {
			t.Fatalf("update fraction out of range: %+v", p)
		}
	}
	// Higher θ writes more rows.
	if res.Points[0].UpdatedRowFraction >= res.Points[2].UpdatedRowFraction {
		t.Fatalf("update fraction must grow with θ: %+v", res.Points)
	}
	// Chosen θ must be one of the candidates or 1.
	valid := map[float64]bool{0.3: true, 0.6: true, 0.9: true, 1: true}
	if !valid[res.Chosen] {
		t.Fatalf("chosen θ = %v not a candidate", res.Chosen)
	}
	// The chosen θ must actually satisfy the loss budget (or be the
	// fallback 1.0).
	if res.Chosen < 1 {
		for _, p := range res.Points {
			if p.Theta == res.Chosen && res.Baseline-p.Accuracy > 0.05 {
				t.Fatalf("chosen θ violates the budget: %+v vs baseline %v", p, res.Baseline)
			}
		}
	}
}

func TestSearchThetaDefaults(t *testing.T) {
	inst := testInstance(t)
	res := SearchTheta(inst, Config{
		Thetas: []float64{0.5, 1.0},
		Train:  gcn.Config{Epochs: 5, Seed: 1, LR: 0.01},
	})
	if len(res.Points) != 2 {
		t.Fatalf("sweep points = %d", len(res.Points))
	}
	// θ = 1.0 with the default 20-epoch stale period still satisfies
	// any budget relative to itself eventually; Chosen must be set.
	if res.Chosen <= 0 || res.Chosen > 1 {
		t.Fatalf("chosen = %v", res.Chosen)
	}
}

func TestSearchThetaValidation(t *testing.T) {
	inst := testInstance(t)
	mustPanic(t, func() {
		SearchTheta(inst, Config{Train: gcn.Config{Epochs: 0}})
	})
	mustPanic(t, func() {
		SearchTheta(inst, Config{
			Thetas: []float64{0},
			Train:  gcn.Config{Epochs: 1, Seed: 1},
		})
	})
	mustPanic(t, func() {
		SearchTheta(inst, Config{
			Thetas: []float64{1.5},
			Train:  gcn.Config{Epochs: 1, Seed: 1},
		})
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestPaperDefault(t *testing.T) {
	dense := graphgen.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	// Complete K4: avg degree 3 ≤ 8 → sparse rule.
	if got := PaperDefault(dense); got != 0.8 {
		t.Fatalf("K4 default = %v, want 0.8", got)
	}
}
