package gopim_test

import (
	"bytes"
	"strings"
	"testing"

	"gopim"
	"gopim/internal/obs"
)

// The observability subsystem's central promise: every Sim-clock metric
// is a pure function of the work submitted, so the rendered snapshot is
// byte-identical at any worker count. The experiment set exercises the
// full instrumented stack — fig4 runs accelerator models (accel,
// pipeline, energy), fig5 the pipeline scheduler, fig6/fig7 the mapping
// substrate — and everything fans out through parallel.Map, whose
// block scheduling varies freely with the worker count.
func TestSimMetricsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker experiment sweep")
	}
	ids := []string{"fig4", "fig5", "fig6", "fig7"}
	opt := gopim.ExperimentOptions{Seed: 11, Fast: true}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer gopim.SetWorkers(0)
	defer obs.Default().Reset()

	var want []byte
	for _, w := range []int{1, 2, 8} {
		gopim.SetWorkers(w)
		obs.Default().Reset()
		if _, err := gopim.RunExperiments(ids, opt); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := obs.Default().WriteText(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		snap := buf.Bytes()
		if !strings.Contains(buf.String(), "pipeline.simulations") {
			t.Fatalf("workers=%d: snapshot missing pipeline metrics:\n%s", w, snap)
		}
		if want == nil {
			want = snap
			continue
		}
		if !bytes.Equal(snap, want) {
			t.Errorf("workers=%d: Sim snapshot differs from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, snap)
		}
	}
}
