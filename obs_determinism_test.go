package gopim_test

import (
	"bytes"
	"strings"
	"testing"

	"gopim"
	"gopim/internal/fault"
	"gopim/internal/obs"
)

// The observability subsystem's central promise: every Sim-clock metric
// is a pure function of the work submitted, so the rendered snapshot is
// byte-identical at any worker count. The experiment set exercises the
// full instrumented stack — fig4 runs accelerator models (accel,
// pipeline, energy), fig5 the pipeline scheduler, fig6/fig7 the mapping
// substrate — and everything fans out through parallel.Map, whose
// block scheduling varies freely with the worker count.
func TestSimMetricsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker experiment sweep")
	}
	ids := []string{"fig4", "fig5", "fig6", "fig7"}
	opt := gopim.ExperimentOptions{Seed: 11, Fast: true}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer gopim.SetWorkers(0)
	defer obs.Default().Reset()

	var want []byte
	for _, w := range []int{1, 2, 8} {
		gopim.SetWorkers(w)
		obs.Default().Reset()
		if _, err := gopim.RunExperiments(ids, opt); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := obs.Default().WriteText(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		snap := buf.Bytes()
		if !strings.Contains(buf.String(), "pipeline.simulations") {
			t.Fatalf("workers=%d: snapshot missing pipeline metrics:\n%s", w, snap)
		}
		if want == nil {
			want = snap
			continue
		}
		if !bytes.Equal(snap, want) {
			t.Errorf("workers=%d: Sim snapshot differs from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, snap)
		}
	}
}

// The same promise with fault injection on: fault maps come from
// seeded per-crossbar streams keyed on stable identity, never on
// scheduling, so a fault-enabled sweep is just as byte-deterministic
// across worker counts — and its snapshot carries the fault counters.
func TestFaultEnabledSimMetricsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker experiment sweep")
	}
	ids := []string{"fig4"}
	opt := gopim.ExperimentOptions{Seed: 11, Fast: true}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer gopim.SetWorkers(0)
	defer obs.Default().Reset()
	fault.SetDefault(fault.MustNew(fault.Config{Rate: 1e-3, Seed: 1}))
	defer fault.SetDefault(nil)

	var want []byte
	for _, w := range []int{1, 2, 8} {
		gopim.SetWorkers(w)
		obs.Default().Reset()
		if _, err := gopim.RunExperiments(ids, opt); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := obs.Default().WriteText(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		snap := buf.Bytes()
		for _, m := range []string{"accel.faulty_cells", "accel.write_retries"} {
			if !strings.Contains(buf.String(), m) {
				t.Fatalf("workers=%d: fault-enabled snapshot missing %s:\n%s", w, m, snap)
			}
		}
		if want == nil {
			want = snap
			continue
		}
		if !bytes.Equal(snap, want) {
			t.Errorf("workers=%d: fault-enabled Sim snapshot differs from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, snap)
		}
	}
}

// A rate-0 fault model installed as the process default must leave the
// Sim snapshot byte-identical to no model at all — the contract that
// keeps golden outputs and bench baselines valid with faults disabled.
func TestZeroRateDefaultLeavesSnapshotUntouched(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	ids := []string{"fig4"}
	opt := gopim.ExperimentOptions{Seed: 11, Fast: true}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer obs.Default().Reset()

	snapshot := func() []byte {
		obs.Default().Reset()
		if _, err := gopim.RunExperiments(ids, opt); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.Default().WriteText(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	base := snapshot()
	fault.SetDefault(fault.MustNew(fault.Config{Rate: 0, Seed: 42}))
	defer fault.SetDefault(nil)
	got := snapshot()
	if !bytes.Equal(got, base) {
		t.Errorf("rate-0 default changed the Sim snapshot:\n--- no model ---\n%s--- rate 0 ---\n%s", base, got)
	}
	// The counters exist (registered) but must read zero without faults.
	for _, line := range strings.Split(string(base), "\n") {
		if strings.HasPrefix(line, "accel.faulty_cells") && !strings.Contains(line, "count=0") {
			t.Errorf("fault counter nonzero in a fault-free run: %s", line)
		}
	}
}
